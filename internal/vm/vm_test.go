package vm

import (
	"testing"

	"memhogs/internal/disk"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
)

// testExec is a minimal Exec: system time is plain sleep, stalls are
// recorded per bucket.
type testExec struct {
	proc  *sim.Proc
	times [NumBuckets]sim.Time
}

func (e *testExec) Proc() *sim.Proc { return e.proc }
func (e *testExec) System(d sim.Time) {
	e.proc.Sleep(d)
	e.times[BucketSystem] += d
}
func (e *testExec) Account(b Bucket, d sim.Time) { e.times[b] += d }

func testParams() Params {
	return Params{
		SoftFaultTime: 30 * sim.Microsecond,
		RescueTime:    80 * sim.Microsecond,
		HardFaultCPU:  200 * sim.Microsecond,
		PageoutCPU:    60 * sim.Microsecond,
	}
}

func testDiskCfg() disk.Config {
	return disk.Config{
		NumDisks: 2, NumAdapters: 1,
		PosTimeMin: 5 * sim.Millisecond, PosTimeMax: 5 * sim.Millisecond,
		SeqPosTime: 600 * sim.Microsecond, TransferTime: 900 * sim.Microsecond,
		Seed: 1,
	}
}

// rig bundles a tiny machine for VM tests.
type rig struct {
	s    *sim.Sim
	phys *mem.Phys
	dk   *disk.Array
	as   *AS
}

func newRig(frames, pages int) *rig {
	s := sim.New()
	phys := mem.New(s, frames)
	dk := disk.New(s, testDiskCfg())
	as := NewAS("test", 0, pages, 0, phys, dk, testParams())
	return &rig{s: s, phys: phys, dk: dk, as: as}
}

// inProc runs body inside a spawned process and runs the sim to
// completion, returning the exec for inspection.
func (r *rig) inProc(t *testing.T, body func(x *testExec)) *testExec {
	t.Helper()
	x := &testExec{}
	r.s.Spawn("t", func(p *sim.Proc) {
		x.proc = p
		body(x)
	})
	r.s.Run(0)
	return x
}

func TestHardFaultThenHit(t *testing.T) {
	r := newRig(8, 8)
	var first, second Outcome
	x := r.inProc(t, func(x *testExec) {
		first = r.as.Touch(x, 3, false)
		second = r.as.Touch(x, 3, false)
	})
	if first != HardFault {
		t.Fatalf("first touch = %v, want hard", first)
	}
	if second != Hit {
		t.Fatalf("second touch = %v, want hit", second)
	}
	if r.as.Stats.HardFaults != 1 || r.as.Stats.PageIns != 1 {
		t.Fatalf("stats = %+v", r.as.Stats)
	}
	if x.times[BucketStallIO] == 0 {
		t.Fatal("hard fault recorded no I/O stall")
	}
	if r.as.Resident != 1 {
		t.Fatalf("Resident = %d, want 1", r.as.Resident)
	}
}

func TestSoftFaultRevalidates(t *testing.T) {
	r := newRig(8, 8)
	var out Outcome
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.as.ClearValid(0, InvalidDaemon)
		out = r.as.Touch(x, 0, false)
	})
	if out != SoftFault {
		t.Fatalf("touch after invalidate = %v, want soft", out)
	}
	if r.as.Stats.SoftFaults != 1 || r.as.Stats.SoftFaultsDaemon != 1 {
		t.Fatalf("stats = %+v", r.as.Stats)
	}
	if !r.as.ResidentValid(0) {
		t.Fatal("page not revalidated")
	}
}

func TestRescueFromFreeList(t *testing.T) {
	r := newRig(8, 8)
	var out Outcome
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 5, false)
		// Simulate a steal: invalidate then reclaim.
		r.as.ClearValid(5, InvalidDaemon)
		freed, _ := r.as.TryReclaim(5, mem.FreedDaemon)
		if !freed {
			t.Error("reclaim failed")
		}
		out = r.as.Touch(x, 5, false)
	})
	if out != RescueFault {
		t.Fatalf("touch after reclaim = %v, want rescue", out)
	}
	if r.as.Stats.RescueFaults != 1 {
		t.Fatalf("stats = %+v", r.as.Stats)
	}
	if r.phys.Stats().RescuedDaemon != 1 {
		t.Fatalf("phys stats = %+v", r.phys.Stats())
	}
	// No additional disk read happened.
	if r.as.Stats.PageIns != 1 {
		t.Fatalf("PageIns = %d, want 1", r.as.Stats.PageIns)
	}
}

func TestHardFaultAfterFrameReallocated(t *testing.T) {
	r := newRig(2, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.as.ClearValid(0, InvalidDaemon)
		r.as.TryReclaim(0, mem.FreedDaemon)
		// Consume both frames so page 0's old frame is reallocated.
		r.as.Touch(x, 1, false)
		r.as.Touch(x, 2, false)
		out := r.as.Touch(x, 0, false)
		if out != HardFault {
			t.Errorf("touch after reallocation = %v, want hard", out)
		}
	})
}

func TestWriteMarksDirtyAndReclaimReportsIt(t *testing.T) {
	r := newRig(8, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 1, true)
		r.as.ClearValid(1, InvalidDaemon)
		_, dirty := r.as.TryReclaim(1, mem.FreedDaemon)
		if !dirty {
			t.Error("dirty page reported clean at reclaim")
		}
		r.as.Touch(x, 2, false)
		r.as.ClearValid(2, InvalidDaemon)
		_, dirty = r.as.TryReclaim(2, mem.FreedDaemon)
		if dirty {
			t.Error("clean page reported dirty at reclaim")
		}
	})
}

func TestPrefetchLeavesPageInvalid(t *testing.T) {
	r := newRig(8, 8)
	var res PrefetchResult
	var out Outcome
	r.inProc(t, func(x *testExec) {
		res = r.as.Prefetch(x, 4)
		if !r.as.IsResident(4) {
			t.Error("prefetched page not resident")
		}
		if r.as.ResidentValid(4) {
			t.Error("prefetched page should not be valid (no TLB entry)")
		}
		out = r.as.Touch(x, 4, false)
	})
	if res != PrefetchRead {
		t.Fatalf("prefetch = %v, want read", res)
	}
	if out != SoftFault {
		t.Fatalf("first touch of prefetched page = %v, want soft fault", out)
	}
	if r.as.Stats.SoftFaultsDaemon != 0 {
		t.Fatal("prefetch soft fault wrongly attributed to daemon")
	}
}

func TestPrefetchDiscardedWhenNoFreeMemory(t *testing.T) {
	r := newRig(2, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.as.Touch(x, 1, false)
		res := r.as.Prefetch(x, 2)
		if res != PrefetchDiscarded {
			t.Errorf("prefetch with full memory = %v, want discarded", res)
		}
		if r.as.IsResident(2) {
			t.Error("discarded prefetch still paged in")
		}
	})
}

func TestPrefetchAlreadyResident(t *testing.T) {
	r := newRig(8, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false)
		if res := r.as.Prefetch(x, 0); res != PrefetchAlreadyIn {
			t.Errorf("prefetch of resident page = %v, want already-in", res)
		}
	})
}

func TestPrefetchRescues(t *testing.T) {
	r := newRig(8, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.as.ClearValid(0, InvalidDaemon)
		r.as.TryReclaim(0, mem.FreedDaemon)
		if res := r.as.Prefetch(x, 0); res != PrefetchRescued {
			t.Errorf("prefetch of free-listed page = %v, want rescued", res)
		}
	})
}

func TestFaultWaitsForInflightPrefetch(t *testing.T) {
	r := newRig(8, 8)
	// One proc prefetches; another touches the same page mid-flight.
	x1 := &testExec{}
	r.s.Spawn("pf", func(p *sim.Proc) {
		x1.proc = p
		r.as.Prefetch(x1, 3)
	})
	var out Outcome
	var pageIns int64
	x2 := &testExec{}
	r.s.Spawn("app", func(p *sim.Proc) {
		x2.proc = p
		p.Sleep(sim.Millisecond) // let the prefetch start its I/O
		out = r.as.Touch(x2, 3, false)
		pageIns = r.as.Stats.PageIns
	})
	r.s.Run(0)
	if out != SoftFault {
		t.Fatalf("touch during in-flight prefetch = %v, want soft fault after wait", out)
	}
	if pageIns != 1 {
		t.Fatalf("PageIns = %d, want 1 (no duplicate I/O)", pageIns)
	}
	if x2.times[BucketStallIO] == 0 {
		t.Fatal("waiting for in-flight prefetch not accounted as I/O stall")
	}
}

func TestReleaseRequestThenReference(t *testing.T) {
	r := newRig(8, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 2, false)
		r.as.InvalidateForRelease(2)
		// The page is referenced again before the releaser runs: the
		// soft fault revalidates it, so TryReclaim must refuse.
		r.as.Touch(x, 2, false)
		freed, _ := r.as.TryReclaim(2, mem.FreedRelease)
		if freed {
			t.Error("reclaimed a page that was referenced after the release request")
		}
	})
	if r.as.Stats.SoftFaults != 1 {
		t.Fatalf("SoftFaults = %d, want 1", r.as.Stats.SoftFaults)
	}
}

func TestReleaseRequestUnreferencedIsReclaimed(t *testing.T) {
	r := newRig(8, 8)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 2, false)
		r.as.InvalidateForRelease(2)
		freed, _ := r.as.TryReclaim(2, mem.FreedRelease)
		if !freed {
			t.Error("unreferenced release request not reclaimed")
		}
	})
	if r.as.Resident != 0 {
		t.Fatalf("Resident = %d, want 0", r.as.Resident)
	}
	if r.as.Stats.ReleasedPages != 1 {
		t.Fatalf("ReleasedPages = %d, want 1", r.as.Stats.ReleasedPages)
	}
}

type recordingWatcher struct {
	ins, outs, revals int
	activity          int
}

func (w *recordingWatcher) PageIn(int)     { w.ins++ }
func (w *recordingWatcher) PageOut(int)    { w.outs++ }
func (w *recordingWatcher) Revalidate(int) { w.revals++ }
func (w *recordingWatcher) Activity()      { w.activity++ }

func TestWatcherNotifications(t *testing.T) {
	r := newRig(8, 8)
	w := &recordingWatcher{}
	r.as.SetWatcher(w)
	r.inProc(t, func(x *testExec) {
		r.as.Touch(x, 0, false) // in
		r.as.ClearValid(0, InvalidDaemon)
		r.as.Touch(x, 0, false) // revalidate
		r.as.ClearValid(0, InvalidDaemon)
		r.as.TryReclaim(0, mem.FreedDaemon) // out
	})
	if w.ins != 1 || w.outs != 1 || w.revals != 1 {
		t.Fatalf("watcher saw ins=%d outs=%d revals=%d", w.ins, w.outs, w.revals)
	}
	if w.activity == 0 {
		t.Fatal("no activity notifications")
	}
}

func TestLockContentionAccounted(t *testing.T) {
	r := newRig(8, 8)
	// A daemon-like proc holds the memlock for 20ms while the app
	// faults.
	r.s.Spawn("daemon", func(p *sim.Proc) {
		r.as.Memlock.Acquire(p)
		p.Sleep(20 * sim.Millisecond)
		r.as.Memlock.Release(p)
	})
	x := &testExec{}
	r.s.Spawn("app", func(p *sim.Proc) {
		x.proc = p
		p.Sleep(sim.Millisecond)
		r.as.Touch(x, 0, false)
	})
	r.s.Run(0)
	if x.times[BucketStallLock] < 19*sim.Millisecond {
		t.Fatalf("lock stall %v, want ~19ms", x.times[BucketStallLock])
	}
}

func TestNoRescueReadsFromSwap(t *testing.T) {
	s := sim.New()
	phys := mem.New(s, 8)
	dk := disk.New(s, testDiskCfg())
	params := testParams()
	params.NoRescue = true
	as := NewAS("nr", 0, 8, 0, phys, dk, params)
	var out Outcome
	s.Spawn("t", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Touch(x, 0, false)
		as.ClearValid(0, InvalidDaemon)
		as.TryReclaim(0, mem.FreedDaemon)
		out = as.Touch(x, 0, false)
	})
	s.Run(0)
	if out != HardFault {
		t.Fatalf("NoRescue touch = %v, want hard fault", out)
	}
	if phys.Stats().RescuedDaemon != 0 {
		t.Fatal("rescue happened despite NoRescue")
	}
	if as.Stats.PageIns != 2 {
		t.Fatalf("page-ins = %d, want 2 (re-read from swap)", as.Stats.PageIns)
	}
}

func TestHardwareRefBitsFreeRevalidation(t *testing.T) {
	s := sim.New()
	phys := mem.New(s, 8)
	dk := disk.New(s, testDiskCfg())
	params := testParams()
	params.HardwareRefBits = true
	as := NewAS("hw", 0, 8, 0, phys, dk, params)
	s.Spawn("t", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Touch(x, 0, false)
		as.ClearValid(0, InvalidDaemon)
		before := p.Now()
		out := as.Touch(x, 0, false)
		if out != Hit {
			t.Errorf("hardware-refbit revalidation counted as %v", out)
		}
		if p.Now() != before {
			t.Error("hardware revalidation consumed time")
		}
	})
	s.Run(0)
	if as.Stats.SoftFaults != 0 {
		t.Fatalf("soft faults = %d, want 0 with hardware reference bits", as.Stats.SoftFaults)
	}
	if !as.ResidentValid(0) {
		t.Fatal("page not revalidated")
	}
}

func TestHardwareRefBitsStillSoftFaultsForPrefetch(t *testing.T) {
	// Hardware bits remove only the daemon's invalidation faults; a
	// prefetched page still takes its validation fault.
	s := sim.New()
	phys := mem.New(s, 8)
	dk := disk.New(s, testDiskCfg())
	params := testParams()
	params.HardwareRefBits = true
	as := NewAS("hw", 0, 8, 0, phys, dk, params)
	s.Spawn("t", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Prefetch(x, 2)
		if out := as.Touch(x, 2, false); out != SoftFault {
			t.Errorf("first touch of prefetched page = %v, want soft", out)
		}
	})
	s.Run(0)
}

func TestOverLimitCallback(t *testing.T) {
	r := newRig(16, 16)
	kicks := 0
	r.as.MaxRSS = 2
	r.as.OverLimit = func() { kicks++ }
	r.inProc(t, func(x *testExec) {
		for vpn := 0; vpn < 5; vpn++ {
			r.as.Touch(x, vpn, false)
		}
	})
	if kicks == 0 {
		t.Fatal("OverLimit never fired despite exceeding MaxRSS")
	}
}

// TestFaultReadaheadDoubleAllocRace regresses a bug the system auditor
// caught: thread B passes its busy-check for page 1 and queues on the
// memory lock; the lock holder (thread A, faulting page 0) starts a
// readahead for page 1; B then acquired the lock and double-allocated
// a frame for the in-flight page. The fault path must re-check Busy
// after taking the lock.
func TestFaultReadaheadDoubleAllocRace(t *testing.T) {
	s := sim.New()
	phys := mem.New(s, 64)
	dk := disk.New(s, testDiskCfg())
	params := testParams()
	params.Readahead = 8
	as := NewAS("race", 0, 16, 0, phys, dk, params)

	xa := &testExec{}
	s.Spawn("A", func(p *sim.Proc) {
		xa.proc = p
		as.Touch(xa, 0, false) // hard fault; readahead covers 1..7
	})
	xb := &testExec{}
	s.Spawn("B", func(p *sim.Proc) {
		xb.proc = p
		// Arrive while A holds the memlock doing its fault-setup CPU
		// work, before the readahead for page 1 is submitted.
		p.Sleep(50 * sim.Microsecond)
		as.Touch(xb, 1, false)
	})
	s.Run(0)

	// Exactly one frame may hold (race, 1).
	owners := 0
	for i := 0; i < phys.NumFrames(); i++ {
		f := phys.Frame(mem.FrameID(i))
		if f.Owner != nil && f.Owner.OwnerName() == "race" && f.VPN == 1 && !f.OnFreeList() {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("page 1 owned by %d frames, want 1", owners)
	}
	if !as.ResidentValid(1) {
		t.Fatal("page 1 not resident after the race")
	}
	// B must not have triggered its own disk read for page 1: the
	// readahead covers it. (One read for page 0's fault + 7 readahead.)
	if as.Stats.HardFaults != 1 {
		t.Fatalf("hard faults = %d, want 1 (B should have waited for the readahead)",
			as.Stats.HardFaults)
	}
}

func TestBucketStrings(t *testing.T) {
	want := map[Bucket]string{
		BucketUser: "user", BucketSystem: "system", BucketStallMem: "stall-mem",
		BucketStallLock: "stall-lock", BucketStallCPU: "stall-cpu", BucketStallIO: "stall-io",
	}
	for b, s := range want {
		if b.String() != s {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), s)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Hit.String() != "hit" || SoftFault.String() != "soft" ||
		RescueFault.String() != "rescue" || HardFault.String() != "hard" {
		t.Fatal("outcome strings wrong")
	}
}

func TestResidencyBitmapsMirrorPTEs(t *testing.T) {
	// Walk an address space through faults, invalidations, reclaims,
	// releases, rescues, and prefetches, checking after each stage that
	// the packed residency/validity bitmaps mirror the PTE array (the
	// source of truth) and that NextResident agrees with a linear scan.
	r := newRig(64, 200)
	check := func(stage string) {
		t.Helper()
		for vpn := 0; vpn < r.as.NumPages(); vpn++ {
			pte := r.as.PTE(vpn)
			if r.as.ResidentBit(vpn) != pte.Present {
				t.Fatalf("%s: vpn %d residency bit %v, PTE present %v",
					stage, vpn, r.as.ResidentBit(vpn), pte.Present)
			}
			if r.as.ValidBit(vpn) != pte.Valid {
				t.Fatalf("%s: vpn %d validity bit %v, PTE valid %v",
					stage, vpn, r.as.ValidBit(vpn), pte.Valid)
			}
		}
		for from := 0; from <= r.as.NumPages(); from += 7 {
			want := -1
			for v := from; v < r.as.NumPages(); v++ {
				if r.as.PTE(v).Present {
					want = v
					break
				}
			}
			if got := r.as.NextResident(from); got != want {
				t.Fatalf("%s: NextResident(%d) = %d, reference scan = %d", stage, from, got, want)
			}
		}
	}
	r.inProc(t, func(x *testExec) {
		for vpn := 0; vpn < 40; vpn++ {
			r.as.Touch(x, vpn, vpn%3 == 0)
		}
		check("after faults")
		for vpn := 0; vpn < 40; vpn += 2 {
			r.as.ClearValid(vpn, InvalidDaemon)
		}
		check("after clock invalidation")
		for vpn := 0; vpn < 20; vpn += 2 {
			r.as.TryReclaim(vpn, mem.FreedDaemon)
		}
		check("after daemon steals")
		r.as.Touch(x, 2, false) // rescue a stolen page
		check("after rescue")
		r.as.InvalidateForRelease(31)
		r.as.TryReclaim(31, mem.FreedRelease)
		check("after release")
		r.as.Prefetch(x, 150)
		check("after prefetch")
		r.as.Touch(x, 150, false)
		check("after prefetched page referenced")
	})
	check("after run")
}
