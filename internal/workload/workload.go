// Package workload defines the paper's benchmark programs (Table 2) in
// the loop-nest language, each reproducing the access-pattern
// pathology the paper attributes to it, plus scaled-down variants for
// fast tests on the small test machine.
//
// The NAS benchmarks are re-expressed at the level the compiler
// analysis cares about: loop structure, array reference patterns, and
// per-iteration computation cost. Data-set sizes are chosen so each
// program is out-of-core on its machine (the paper likewise grew the
// NAS data sets beyond memory).
package workload

import (
	"fmt"

	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// Spec is one out-of-core benchmark.
type Spec struct {
	Name        string
	Description string // Table 2 text
	Pattern     string // Table 2 access-pattern text
	Source      string // loop-language source

	// Params are the runtime bindings (for params not known at compile
	// time).
	Params map[string]int64

	// DataGens builds the value generators for indirection arrays,
	// given the runtime bindings.
	DataGens func(p map[string]int64) map[string]func(int64) int64
}

// Program parses the source and attaches the data generators for the
// given bindings (nil = the spec's own Params).
func (s *Spec) Program(params map[string]int64) *lang.Program {
	if params == nil {
		params = s.Params
	}
	prog := lang.MustParse(s.Source)
	if s.DataGens != nil {
		for name, fn := range s.DataGens(params) {
			prog.SetData(name, fn)
		}
	}
	return prog
}

// ByName returns the full-size spec with the given (lower-case) name.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// All returns the six full-size benchmarks in the paper's order
// (sized for the 75 MB platform).
func All() []*Spec {
	return []*Spec{Matvec(), Embar(), Buk(), Cgm(), Mgrid(), Fftpde()}
}

// AllScaled returns small variants sized for the 4 MB test machine.
func AllScaled() []*Spec {
	return []*Spec{MatvecScaled(), EmbarScaled(), BukScaled(), CgmScaled(), MgridScaled(), FftpdeScaled()}
}

// ScaledByName returns the scaled variant with the given name.
func ScaledByName(name string) (*Spec, error) {
	for _, s := range AllScaled() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Matvec is the matrix-vector multiplication kernel: the matrix is
// streamed with no reuse while the vector is reused on every row.
// Aggressive releasing frees the vector each row and fights the
// application for it; buffering retains it (its release priority is
// non-zero), which is the paper's headline R-vs-B contrast. Bounds are
// known at compile time, so the analysis is "essentially perfect".
func Matvec() *Spec { return matvec(3200, 16384) } // A = 400 MB

// MatvecScaled shrinks the matrix to ~6 MB.
func MatvecScaled() *Spec { return matvec(96, 8192) }

func matvec(n, m int64) *Spec {
	return &Spec{
		Name:        "matvec",
		Description: "dense matrix-vector multiplication kernel",
		Pattern:     "multi-dimensional loops with known bounds; matrix streamed, vector reused per row",
		Source: fmt.Sprintf(`
program matvec
param N, M
known N = %d
known M = %d
array A[N][M] of float64
array x[M] of float64
array y[N] of float64
for i = 0 to N-1 {
    for j = 0 to M-1 {
        y[i] = y[i] + A[i][j] * x[j] @ 100
    }
}
`, n, m),
		Params: map[string]int64{},
	}
}

// Embar is the embarrassingly-parallel NAS kernel: one-dimensional
// loops over a sequential out-of-core array with heavy per-element
// computation (gaussian-pair generation) and no temporal reuse — the
// compiler analysis is essentially perfect and all releases have
// priority zero, so R and B behave identically.
func Embar() *Spec { return embar(20971520) } // 160 MB

// EmbarScaled shrinks the array to 8 MB.
func EmbarScaled() *Spec { return embar(1048576) }

func embar(n int64) *Spec {
	return &Spec{
		Name:        "embar",
		Description: "NAS EP: gaussian random pair generation and tallying",
		Pattern:     "one-dimensional loops, sequential, no reuse",
		Source: fmt.Sprintf(`
program embar
param N
known N = %d
array xs[N] of float64
array q[2048] of float64
for i = 0 to N-1 {
    xs[i] = xs[i] * 2 + 1 @ 900
}
for i = 0 to N-1 {
    q[0] = q[0] + xs[i] @ 250
}
`, n),
		Params: map[string]int64{},
	}
}

// Buk is the NAS integer bucket sort: two large sequentially-accessed
// arrays and an equally large randomly-accessed rank array reached
// through an indirection. The compiler releases the sequential arrays
// but cannot reason about the random one, which therefore stays mostly
// in memory — improving on the OS's uniform replacement (§4.3). Loop
// bounds are unknown at compile time.
func Buk() *Spec { return buk(4<<20, 2) } // 3 x 32 MB

// BukScaled shrinks the arrays to 3 x 2 MB.
func BukScaled() *Spec { return buk(256<<10, 2) }

func buk(maxn, reps int64) *Spec {
	return &Spec{
		Name:        "buk",
		Description: "NAS IS: bucket (counting) sort with random ranking array",
		Pattern:     "unknown loop bounds; two sequential arrays plus one randomly-indexed array",
		Source: fmt.Sprintf(`
program buk
param N, REPS
array key[%d] of int64
array keyout[%d] of int64
array rank[%d] of int64
proc rankpass() {
    for i = 0 to N-1 {
        rank[key[i]] = rank[key[i]] + 1 @ 40
    }
}
proc copypass() {
    for i = 0 to N-1 {
        keyout[i] = key[i] @ 25
    }
}
for rep = 0 to REPS-1 {
    call rankpass()
    call copypass()
}
`, maxn, maxn, maxn),
		Params: map[string]int64{"N": maxn, "REPS": reps},
		DataGens: func(p map[string]int64) map[string]func(int64) int64 {
			n := p["N"]
			return map[string]func(int64) int64{
				"key": func(i int64) int64 { return int64(sim.Hash64(uint64(i)) % uint64(n)) },
			}
		},
	}
}

// Cgm is the NAS conjugate-gradient kernel: a sparse matrix-vector
// product with indirect column references and unknown inner-loop
// bounds. The compiler emits per-iteration prefetches for the indirect
// references and per-row hint streams that the run-time layer must
// filter, visibly inflating user time (§4.3). The matrix is re-read on
// every CG iteration — reuse the compiler sees but cannot exploit.
func Cgm() *Spec { return cgm(192<<10, 3) } // ~82 MB total

// CgmScaled shrinks the matrix to ~4.7 MB.
func CgmScaled() *Spec { return cgm(12<<10, 2) }

func cgm(rows, niter int64) *Spec {
	nnz := rows * 32
	return &Spec{
		Name:        "cgm",
		Description: "NAS CG: sparse conjugate gradient iterations",
		Pattern:     "unknown inner-loop bounds; indirect column references; matrix re-read each iteration",
		Source: fmt.Sprintf(`
program cgm
param NR, RNZ, NITER
array aval[%d] of float64
array acol[%d] of int32
array p[%d] of float64
array q[%d] of float64
array r[%d] of float64
proc spmv() {
    for row = 0 to NR-1 {
        for k = 0 to RNZ-1 {
            q[row] = q[row] + aval[32*row+k] * p[acol[32*row+k]] @ 60
        }
    }
}
proc vecupdate() {
    for row = 0 to NR-1 {
        p[row] = p[row] + q[row] - r[row] @ 30
    }
}
for it = 0 to NITER-1 {
    call spmv()
    call vecupdate()
}
`, nnz, nnz, rows, rows, rows),
		Params: map[string]int64{"NR": rows, "RNZ": 32, "NITER": niter},
		DataGens: func(p map[string]int64) map[string]func(int64) int64 {
			nr := p["NR"]
			return map[string]func(int64) int64{
				"acol": func(i int64) int64 {
					// Banded-ish sparse structure: columns near the
					// row with occasional far entries.
					row := i / 32
					h := sim.Hash64(uint64(i))
					if h%4 == 0 {
						return int64(h>>8) % nr
					}
					off := int64(h%4096) - 2048
					c := row + off
					if c < 0 {
						c += nr
					}
					return c % nr
				},
			}
		},
	}
}

// Mgrid is the NAS multigrid kernel: the same smoothing/residual
// procedures are called with different bounds at different grid levels
// (a single compiled version of each), and each V-cycle pass re-reads
// what the previous pass just released — inter-nest reuse the compiler
// cannot see. Much of the freeing is left to the paging daemon and
// many released pages must be rescued (Figure 9).
func Mgrid() *Spec { return mgrid(192, 190, 60, 2) } // 3 x 56.6 MB

// MgridScaled shrinks the grids to 3 x 2 MB.
func MgridScaled() *Spec { return mgrid(64, 62, 20, 2) }

func mgrid(dim, nf, nc, nit int64) *Spec {
	return &Spec{
		Name:        "mgrid",
		Description: "NAS MG: multigrid V-cycles over a 3-D grid",
		Pattern:     "multi-dimensional loops with unknown, per-call bounds (single compiled version)",
		Source: fmt.Sprintf(`
program mgrid
param NF, NC, NIT
array u[%d][%d][%d] of float64
array v[%d][%d][%d] of float64
array r[%d][%d][%d] of float64
proc resid(n) {
    for i0 = 1 to n-1 {
        for i1 = 1 to n-1 {
            for i2 = 1 to n-1 {
                r[i0][i1][i2] = v[i0][i1][i2] - u[i0][i1][i2] - u[i0-1][i1][i2] - u[i0+1][i1][i2] @ 250
            }
        }
    }
}
proc psinv(n) {
    for i0 = 1 to n-1 {
        for i1 = 1 to n-1 {
            for i2 = 1 to n-1 {
                u[i0][i1][i2] = u[i0][i1][i2] + r[i0][i1][i2] + r[i0-1][i1][i2] + r[i0+1][i1][i2] @ 250
            }
        }
    }
}
for it = 0 to NIT-1 {
    call resid(NF)
    call psinv(NF)
    call resid(NC)
    call psinv(NC)
    call psinv(NF)
}
`, dim, dim, dim, dim, dim, dim, dim, dim, dim),
		Params: map[string]int64{"NF": nf, "NC": nc, "NIT": nit},
	}
}

// Fftpde is the NAS 3-D FFT PDE solver: butterfly passes whose access
// stride is a runtime parameter that changes between passes. The
// symbolic stride makes the subscript look independent of the block
// loop variable, so the compiler wrongly attributes temporal reuse to
// it: every release carries a non-zero priority, and the buffering
// run-time layer retains pages that will never be reused — FFTPDE-B
// "fails to release enough memory" (§4.5).
func Fftpde() *Spec { return fftpde(8<<20, 2) } // 128 MB

// FftpdeScaled shrinks the array to 8 MB.
func FftpdeScaled() *Spec { return fftpde(512<<10, 1) }

func fftpde(nx, nit int64) *Spec {
	return &Spec{
		Name:        "fftpde",
		Description: "NAS FT: 3-D FFT with per-pass stride changes",
		Pattern:     "stride changes within a loop set (symbolic strides); false temporal reuse",
		Source: fmt.Sprintf(`
program fftpde
param S1, NB1, M1, S2, NB2, M2, NIT
array x[%d] of complex128
proc pass(s, nb, m) {
    for b = 0 to nb-1 {
        for k = 0 to m-1 {
            x[s*b+k] = x[s*b+k] * 2 + 1 @ 130
        }
    }
}
for it = 0 to NIT-1 {
    call pass(S1, NB1, M1)
    call pass(S2, NB2, M2)
}
`, nx),
		Params: map[string]int64{
			"S1": 4096, "NB1": nx / 4096, "M1": 4096,
			"S2": 64, "NB2": nx / 64, "M2": 64,
			"NIT": nit,
		},
	}
}
