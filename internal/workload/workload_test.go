package workload

import (
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/kernel"
	"memhogs/internal/lang"
)

func TestAllSpecsParseAndCompile(t *testing.T) {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog := spec.Program(nil)
			comp, err := compiler.Compile(prog, tgt)
			if err != nil {
				t.Fatal(err)
			}
			img, err := comp.Bind(spec.Params)
			if err != nil {
				t.Fatal(err)
			}
			// Every full-size benchmark must be out-of-core on the
			// 75 MB platform.
			if img.TotalPages <= cfg.UserMemPages {
				t.Errorf("%s: %d pages fits in %d-page memory (not out-of-core)",
					spec.Name, img.TotalPages, cfg.UserMemPages)
			}
		})
	}
}

func TestScaledSpecsAreOutOfCoreOnTestMachine(t *testing.T) {
	cfg := kernel.TestConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	for _, spec := range AllScaled() {
		prog := spec.Program(nil)
		comp, err := compiler.Compile(prog, tgt)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		img, err := comp.Bind(spec.Params)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if img.TotalPages <= cfg.UserMemPages {
			t.Errorf("%s scaled: %d pages fits in %d-page test memory",
				spec.Name, img.TotalPages, cfg.UserMemPages)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"matvec", "embar", "buk", "cgm", "mgrid", "fftpde"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if _, err := ScaledByName(name); err != nil {
			t.Errorf("ScaledByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestBukKeysInRange(t *testing.T) {
	spec := Buk()
	gens := spec.DataGens(spec.Params)
	key := gens["key"]
	n := spec.Params["N"]
	for i := int64(0); i < 10000; i++ {
		v := key(i)
		if v < 0 || v >= n {
			t.Fatalf("key(%d) = %d out of [0,%d)", i, v, n)
		}
	}
	// Keys must be well spread (bucket-sort input): check that 10k
	// keys hit many distinct pages of the rank array.
	pages := map[int64]bool{}
	for i := int64(0); i < 10000; i++ {
		pages[key(i)*8/16384] = true
	}
	if len(pages) < 1000 {
		t.Fatalf("keys hit only %d pages; not random enough", len(pages))
	}
}

func TestCgmColumnsInRange(t *testing.T) {
	spec := Cgm()
	gens := spec.DataGens(spec.Params)
	acol := gens["acol"]
	nr := spec.Params["NR"]
	for i := int64(0); i < 10000; i++ {
		v := acol(i)
		if v < 0 || v >= nr {
			t.Fatalf("acol(%d) = %d out of [0,%d)", i, v, nr)
		}
	}
}

func TestCgmColumnsMostlyBanded(t *testing.T) {
	spec := Cgm()
	gens := spec.DataGens(spec.Params)
	acol := gens["acol"]
	near := 0
	const samples = 10000
	// Sample mid-matrix rows so the band does not wrap around.
	const base = 1 << 20
	for i := int64(base); i < base+samples; i++ {
		row := i / 32
		c := acol(i)
		d := c - row
		if d < 0 {
			d = -d
		}
		if d <= 2048 {
			near++
		}
	}
	if near < samples*6/10 {
		t.Fatalf("only %d/%d columns near the diagonal; band structure lost", near, samples)
	}
}

func TestMatvecAnalysisPriorities(t *testing.T) {
	// The paper's MATVEC behavior depends on x having a non-zero
	// release priority while A has zero.
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	comp, err := compiler.Compile(Matvec().Program(nil), tgt)
	if err != nil {
		t.Fatal(err)
	}
	st := comp.Stats
	if st.ZeroPrioReleases != 1 { // A only
		t.Errorf("zero-priority releases = %d, want 1", st.ZeroPrioReleases)
	}
	if st.ReusePrioReleases != 2 { // x and y
		t.Errorf("reuse-priority releases = %d, want 2", st.ReusePrioReleases)
	}
}

func TestFftpdeMisdetection(t *testing.T) {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	comp, err := compiler.Compile(Fftpde().Program(nil), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Stats.MisdetectedReuse == 0 {
		t.Error("FFTPDE's symbolic stride did not trigger reuse misdetection")
	}
	if comp.Stats.ZeroPrioReleases != 0 {
		t.Errorf("FFTPDE should have no zero-priority releases, got %d",
			comp.Stats.ZeroPrioReleases)
	}
}

func TestBukIndirectNotReleased(t *testing.T) {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	comp, err := compiler.Compile(Buk().Program(nil), tgt)
	if err != nil {
		t.Fatal(err)
	}
	st := comp.Stats
	if st.IndirectRefs != 2 {
		t.Errorf("indirect refs = %d, want 2 (rank read+write)", st.IndirectRefs)
	}
	// Releases: key (rankpass), key and keyout (copypass) = 3; rank
	// never released.
	if st.ReleaseDirs != 3 {
		t.Errorf("release dirs = %d, want 3", st.ReleaseDirs)
	}
}

func TestMgridUnknownBounds(t *testing.T) {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	comp, err := compiler.Compile(Mgrid().Program(nil), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Stats.UnknownBoundLoops != 6 { // 2 procs x 3 loops
		t.Errorf("unknown-bound loops = %d, want 6", comp.Stats.UnknownBoundLoops)
	}
	if comp.Stats.ImpreciseReleases == 0 {
		t.Error("MGRID's unknown bounds did not trigger imprecise release placement")
	}
}

func TestParamsConsistentWithSubscripts(t *testing.T) {
	// CGM's source hard-codes the row stride 32; the binding must
	// agree or the sweep would skip data.
	spec := Cgm()
	if spec.Params["RNZ"] != 32 {
		t.Fatalf("RNZ binding %d inconsistent with the literal stride 32", spec.Params["RNZ"])
	}
}

func TestProgramsDeterministic(t *testing.T) {
	a := lang.Format(Matvec().Program(nil))
	b := lang.Format(Matvec().Program(nil))
	if a != b {
		t.Fatal("spec program not deterministic")
	}
}
