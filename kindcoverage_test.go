// Kind-coverage regression test: the dynamic complement of simvet's
// SV003 registry check. SV003 proves statically that every events.Kind
// has an Emit call site somewhere in non-test code; this test proves
// the sites are actually reachable by accumulating recorder counters
// over a small matrix of runs and requiring a nonzero total per kind.
package memhogs

import (
	"testing"

	"memhogs/internal/chaos"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// coverageRun is traceRun with an arbitrary config mutation (fault
// plans, repeat mode, queue-cap stress).
func coverageRun(t *testing.T, bench string, mode rt.Mode, mut func(*driver.RunConfig)) events.Counts {
	t.Helper()
	spec, err := workload.ScaledByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	var rec *events.Recorder
	cfg := driver.TestRunConfig(mode)
	if mut != nil {
		mut(&cfg)
	}
	cfg.OnSystem = func(sys *kernel.System) {
		rec = events.New(sys.Sim, 1<<18)
		sys.SetEvents(rec)
	}
	if _, err := driver.Run(spec, cfg); err != nil {
		t.Fatal(err)
	}
	return rec.Counts()
}

// tenantCoverageRun runs a small sharded multi-tenant experiment, the
// only reachable source of the NUMA kinds (alloc-local, alloc-remote,
// balancer-migrate).
func tenantCoverageRun(t *testing.T) events.Counts {
	t.Helper()
	spec, err := workload.ScaledByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	var rec *events.Recorder
	cfg := driver.DefaultTenantConfig(rt.ModeOriginal)
	cfg.Kernel = kernel.TestConfig()
	cfg.Kernel.Nodes = 4
	cfg.JobPages = 16
	cfg.MeanInterarrival = 100 * sim.Millisecond
	cfg.Horizon = 5 * sim.Second
	cfg.OnSystem = func(sys *kernel.System) {
		rec = events.New(sys.Sim, 1<<18)
		sys.SetEvents(rec)
	}
	if _, err := driver.RunTenants(spec, cfg); err != nil {
		t.Fatal(err)
	}
	return rec.Counts()
}

// TestEveryEventKindObservable asserts that every registered kind is
// produced by at least one run in the matrix below. If this fails
// after adding a kind, either instrument the new decision point or
// extend the matrix with a run that reaches it.
func TestEveryEventKindObservable(t *testing.T) {
	var total events.Counts
	add := func(c events.Counts) {
		for k := range c {
			total[k] += c[k]
		}
	}

	// The headline configuration: a full scaled FFTPDE run under the
	// buffered version covers the fault, daemon, releaser, run-time
	// buffering and shared-page paths.
	add(coverageRun(t, "fftpde", rt.ModeBuffered, nil))

	// Reactive mode is the only producer of daemon-donated: pages
	// leave the buffered queues only when the daemon pulls them
	// through the donor callback.
	add(coverageRun(t, "fftpde", rt.ModeReactive, nil))

	// A chaos-armed repeat run covers chaos-inject and the defensive
	// paths a clean single pass never reaches: free-list rescues and
	// releaser skip-ref need the program to loop back over pages it
	// released (repeat + aggressive), and the injected late/duplicate
	// hints produce release-not-resident drops.
	plan, err := chaos.ClassPlan("all", 7)
	if err != nil {
		t.Fatal(err)
	}
	add(coverageRun(t, "matvec", rt.ModeAggressive, func(c *driver.RunConfig) {
		c.Chaos = &plan
		c.Repeat = true
		c.Horizon = 2 * 60 * sim.Second
	}))

	// Starved queues force the two overflow kinds: a one-slot prefetch
	// work queue drops hints, and a four-page release queue hits its
	// cap on every burst.
	add(coverageRun(t, "fftpde", rt.ModeBuffered, func(c *driver.RunConfig) {
		c.RT.MaxQueue = 4
		c.RT.MaxPfQueue = 1
		c.RT.Workers = 1
	}))

	// A NUMA-sharded multi-tenant run is the only producer of the
	// node-placement kinds: alloc-local/alloc-remote are emitted only
	// when nodes > 1, and balancer-migrate needs the inter-node
	// balancer to move free frames between regions.
	add(tenantCoverageRun(t))

	// A far-tier run is the only producer of the tiering kinds: the
	// buffered FFTPDE releases pages with reuse (eq. 2 priority >= 1),
	// which demote instead of freeing (tier-demote), and later
	// references promote them back at far latency (fault-far +
	// tier-promote). The DRAM budget shrinks by the far pages so the
	// total stays the test machine's 256.
	add(coverageRun(t, "fftpde", rt.ModeBuffered, func(c *driver.RunConfig) {
		c.Kernel.UserMemPages -= 64
		c.Kernel.Far.Pages = 64
	}))

	for k := events.Kind(0); k < events.KindCount; k++ {
		if k.String() == "unknown" {
			t.Errorf("Kind %d has no name in kindNames", k)
		}
		if total[k] == 0 {
			t.Errorf("events.Kind %s (%d) never observed across the run matrix", k, k)
		}
	}
}
