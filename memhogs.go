// Package memhogs is a library-scale reproduction of Brown & Mowry,
// "Taming the Memory Hogs: Using Compiler-Inserted Releases to Manage
// Physical Memory Intelligently" (OSDI 2000).
//
// It provides, end to end:
//
//   - a small loop-nest language for out-of-core array programs;
//   - the paper's compiler pass: reuse and locality analysis, software
//     pipelined prefetching, and aggressive release insertion with
//     reuse encoded as priorities (equation 2);
//   - the run-time layer with its filtering and the two release
//     policies (aggressive vs buffered, §3.3);
//   - a simulated SGI Origin 200 / IRIX 6.5 platform: global clock
//     replacement with software reference bits, free list with rescue,
//     the PagingDirected policy module and its shared page, a releaser
//     daemon, and striped swap over ten disks (§3.1, Table 1);
//   - the six out-of-core benchmarks of Table 2 and the interactive
//     task of §1.1;
//   - drivers that regenerate every table and figure of §4.
//
// Quick start:
//
//	rep, err := memhogs.RunBenchmark("matvec", memhogs.Buffered, memhogs.DefaultMachine())
//	fmt.Println(rep)
//
// or compile your own program:
//
//	prog, err := memhogs.Compile(src, memhogs.DefaultMachine(), memhogs.Buffered)
//	fmt.Println(prog.Listing())
package memhogs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"memhogs/internal/chaos"
	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/experiments"
	"memhogs/internal/footprint"
	"memhogs/internal/hogvet"
	"memhogs/internal/kernel"
	"memhogs/internal/lang"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/trace"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

// Version selects one of the paper's four program versions.
type Version int

// The paper's program versions (Figure 7's bars).
const (
	Original     Version = iota // unmodified program
	PrefetchOnly                // compiler-inserted prefetching
	Aggressive                  // prefetch + aggressive releasing
	Buffered                    // prefetch + release buffering
)

// String returns the paper's one-letter version name.
func (v Version) String() string { return v.mode().String() }

func (v Version) mode() rt.Mode {
	switch v {
	case Original:
		return rt.ModeOriginal
	case PrefetchOnly:
		return rt.ModePrefetch
	case Aggressive:
		return rt.ModeAggressive
	default:
		return rt.ModeBuffered
	}
}

// Versions lists all four program versions in the paper's order.
func Versions() []Version { return []Version{Original, PrefetchOnly, Aggressive, Buffered} }

// Machine describes the simulated platform.
type Machine struct {
	CPUs       int
	MemoryMB   int
	PageSizeKB int
	Disks      int
	Adapters   int
	// FarMemMB adds a CXL-like far-memory tier of that size between
	// DRAM and swap; 0 (the default) means no far tier — released
	// pages go straight to swap as in the paper's platform.
	FarMemMB int
	// Scaled marks the small test machine; it only affects which
	// built-in benchmark sizes RunBenchmark picks.
	Scaled bool
}

// DefaultMachine returns the paper's platform (Table 1): 4 CPUs, 75 MB
// of user memory, 16 KB pages, ten disks on five adapters.
func DefaultMachine() Machine {
	return Machine{CPUs: 4, MemoryMB: 75, PageSizeKB: 16, Disks: 10, Adapters: 5}
}

// TestMachine returns a tiny machine (4 MB) for fast experimentation.
func TestMachine() Machine {
	return Machine{CPUs: 4, MemoryMB: 4, PageSizeKB: 16, Disks: 2, Adapters: 1, Scaled: true}
}

func (m Machine) kernelConfig() kernel.Config {
	cfg := kernel.DefaultConfig()
	if m.Scaled {
		cfg = kernel.TestConfig()
	}
	if m.CPUs > 0 {
		cfg.NCPU = m.CPUs
	}
	if m.PageSizeKB > 0 {
		cfg.PageSize = m.PageSizeKB << 10
	}
	if m.MemoryMB > 0 {
		cfg.UserMemPages = m.MemoryMB << 20 / cfg.PageSize
	}
	if m.Disks > 0 {
		cfg.Disk.NumDisks = m.Disks
	}
	if m.Adapters > 0 {
		cfg.Disk.NumAdapters = m.Adapters
	}
	if m.FarMemMB > 0 {
		cfg.Far.Pages = m.FarMemMB << 20 / cfg.PageSize
	}
	return cfg
}

// Program is a compiled out-of-core program.
type Program struct {
	name string
	comp *compiler.Compiled
	prog *lang.Program
	mach Machine
	ver  Version
}

// Compile parses and compiles a loop-nest program for the given
// machine and version. See the package documentation of internal/lang
// for the surface syntax; examples/quickstart shows a complete
// program.
func Compile(source string, m Machine, v Version) (*Program, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	cfg := m.kernelConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	tgt.Prefetch = v.mode().UsesPrefetch()
	tgt.Release = v.mode().UsesRelease()
	comp, err := compiler.Compile(prog, tgt)
	if err != nil {
		return nil, err
	}
	return &Program{name: prog.Name, comp: comp, prog: prog, mach: m, ver: v}, nil
}

// Name returns the program's declared name.
func (p *Program) Name() string { return p.name }

// Listing returns the transformed pseudo-code with the inserted
// prefetch and release calls (the paper's Figure 5 view).
func (p *Program) Listing() string { return p.comp.Listing() }

// SetData attaches a value generator to an indirection index array
// (e.g. BUK's key array); required before running programs with
// a[b[i]] references.
func (p *Program) SetData(array string, fn func(int64) int64) {
	p.prog.SetData(array, fn)
}

// Stats summarizes what the compiler inserted.
type Stats struct {
	Nests, Refs, IndirectRefs                   int
	PrefetchDirectives, ReleaseDirectives       int
	ZeroPriorityReleases, ReusePriorityReleases int
	MisdetectedReuse, UnknownBoundLoops         int
}

// Stats returns the compiler's analysis summary.
func (p *Program) Stats() Stats {
	s := p.comp.Stats
	return Stats{
		Nests: s.Nests, Refs: s.Refs, IndirectRefs: s.IndirectRefs,
		PrefetchDirectives: s.PrefetchDirs, ReleaseDirectives: s.ReleaseDirs,
		ZeroPriorityReleases: s.ZeroPrioReleases, ReusePriorityReleases: s.ReusePrioReleases,
		MisdetectedReuse: s.MisdetectedReuse, UnknownBoundLoops: s.UnknownBoundLoops,
	}
}

// VetFinding is one structured finding from the static hint-safety
// verifier, in plain exported types.
type VetFinding struct {
	Code     string // stable check code, e.g. "HV006"
	Check    string // short check name, e.g. "false-temporal-reuse"
	Severity string // "note", "warning" or "error"
	Position string // program:line (proc p)
	Array    string // array the finding concerns, if any
	Tag      int    // hint tag the finding concerns; -1 if none
	Message  string
	Detail   string
	Fix      string
}

// VetReport is the verifier's output for one compiled program.
type VetReport struct {
	Program  string
	Findings []VetFinding
	Errors   int
	Warnings int
	Notes    int

	text string
}

// HasErrors reports whether any finding is error-severity — the
// condition under which hogc and memhog vet exit non-zero.
func (r *VetReport) HasErrors() bool { return r.Errors > 0 }

// Clean reports whether the schedule produced no findings at
// warning-or-above severity.
func (r *VetReport) Clean() bool { return r.Errors == 0 && r.Warnings == 0 }

// String renders every finding followed by a summary line.
func (r *VetReport) String() string { return r.text }

func vetReport(name string, ds hogvet.Diagnostics) *VetReport {
	r := &VetReport{Program: name, text: ds.String()}
	r.Errors, r.Warnings, r.Notes = ds.Counts()
	for i := range ds {
		d := &ds[i]
		r.Findings = append(r.Findings, VetFinding{
			Code: d.Code, Check: d.Check, Severity: d.Severity.String(),
			Position: d.Pos(), Array: d.Array, Tag: d.Tag,
			Message: d.Message, Detail: d.Detail, Fix: d.Fix,
		})
	}
	return r
}

// Vet runs the static hint-safety verifier (internal/hogvet) over the
// compiled schedule: release-before-last-use, forbidden indirect
// releases, priority consistency against equation (2), duplicate and
// shadowed hints, false temporal reuse from symbolic strides (the
// FFTPDE pathology) and hint floods under unknown bounds (the
// CGM/MGRID overhead).
func (p *Program) Vet() *VetReport {
	return vetReport(p.name, hogvet.Vet(p.comp))
}

// VetWithStats is Vet with the compiler's analysis summary prepended
// as HV000 notes, routed through the same formatter as real findings
// (the hogc -stats view).
func (p *Program) VetWithStats() *VetReport {
	st := p.Stats()
	notes := hogvet.InfoNotes(p.name,
		fmt.Sprintf("analysis: %d nests, %d refs (%d indirect)", st.Nests, st.Refs, st.IndirectRefs),
		fmt.Sprintf("inserted: %d prefetch, %d release (%d zero-priority, %d with reuse)",
			st.PrefetchDirectives, st.ReleaseDirectives, st.ZeroPriorityReleases, st.ReusePriorityReleases),
	)
	return vetReport(p.name, append(notes, hogvet.Vet(p.comp)...))
}

// VetBenchmark compiles a built-in benchmark for the machine (Buffered
// version, so the full prefetch and release schedule is present) and
// runs the verifier over it, with the benchmark's runtime parameters
// bound so the residency certification (HV011–HV013) evaluates at the
// machine's scale.
func VetBenchmark(name string, m Machine) (*VetReport, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return nil, err
	}
	prog, err := Compile(spec.Source, m, Buffered)
	if err != nil {
		return nil, err
	}
	return vetReport(prog.name, hogvet.VetParams(prog.comp, spec.Params)), nil
}

// CertifyBenchmark compiles a built-in benchmark with the full hint
// schedule and renders its hogflow residency certificates for all
// four versions O/P/R/B: the per-nest breakdown of the buffered
// interpretation plus the cross-version peak summary. The output is a
// pure function of the benchmark and machine, so it is byte-identical
// across runs and worker counts.
func CertifyBenchmark(name string, m Machine) (string, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return "", err
	}
	prog, err := Compile(spec.Source, m, Buffered)
	if err != nil {
		return "", err
	}
	certs := map[footprint.Version]*footprint.Certificate{}
	for _, v := range footprint.Versions() {
		certs[v] = footprint.Certify(prog.prog, prog.comp.Target, prog.comp.Hints(), v,
			footprint.Opts{Params: spec.Params})
	}
	return footprint.Report(certs), nil
}

// CertifyBenchmarkTiered renders a benchmark's two-tier residency
// certificates at every DRAM:far ratio of the tiering campaign
// (`memhog certify -far`): the machine's memory budget is split by
// each ratio, the schedule recompiles against the DRAM share, and the
// report carries the far-tier occupancy and demotion-flow bounds next
// to the DRAM peaks (the 1:0 baseline reproduces the single-tier
// certificate). Sections are separated by "==== name @ D:F ===="
// headers; like CertifyBenchmark the output is a pure function of the
// benchmark and machine.
func CertifyBenchmarkTiered(name string, m Machine) (string, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return "", err
	}
	cfg := m.kernelConfig()
	var b strings.Builder
	for _, ratio := range experiments.TieringRatios {
		dram, far := ratio.Split(cfg.UserMemPages)
		tgt := compiler.DefaultTarget(cfg.PageSize, dram)
		tgt.Prefetch = true
		tgt.Release = true
		prog, err := lang.Parse(spec.Source)
		if err != nil {
			return "", err
		}
		comp, err := compiler.Compile(prog, tgt)
		if err != nil {
			return "", err
		}
		opts := footprint.Opts{Params: spec.Params, FarPages: far, FarMinPrio: cfg.Far.MinPrio}
		certs := map[footprint.Version]*footprint.Certificate{}
		for _, v := range footprint.Versions() {
			certs[v] = footprint.Certify(prog, tgt, comp.Hints(), v, opts)
		}
		fmt.Fprintf(&b, "==== %s @ %s ====\n%s\n", name, ratio, footprint.Report(certs))
	}
	return b.String(), nil
}

// RunOptions configures a Program run.
type RunOptions struct {
	// Params binds the program's runtime parameters.
	Params map[string]int64
	// InteractiveSleepMS, if >= 0, runs the paper's interactive task
	// concurrently with the given think time in milliseconds.
	InteractiveSleepMS int
	// RepeatSeconds, if > 0, loops the program until the given virtual
	// time instead of running it once.
	RepeatSeconds int
}

// Report is the outcome of a run, in plain units.
type Report struct {
	Benchmark string
	Version   string

	ElapsedSeconds       float64
	UserSeconds          float64
	SystemSeconds        float64
	StallResourceSeconds float64
	StallIOSeconds       float64

	HardFaults       int64
	SoftFaults       int64
	SoftFaultsDaemon int64
	RescueFaults     int64
	PageIns          int64

	DaemonActivations int64
	PagesStolen       int64
	PagesReleased     int64
	ReleasesRescued   int64

	PrefetchesIssued   int64
	PrefetchesFiltered int64
	ReleaseCalls       int64

	InteractiveMeanResponseMS  float64
	InteractivePageInsPerSweep float64
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %.3fs elapsed\n", r.Benchmark, r.Version, r.ElapsedSeconds)
	fmt.Fprintf(&b, "  user %.3fs  system %.3fs  stall-resources %.3fs  stall-io %.3fs\n",
		r.UserSeconds, r.SystemSeconds, r.StallResourceSeconds, r.StallIOSeconds)
	fmt.Fprintf(&b, "  faults: %d hard, %d soft (%d daemon-caused), %d rescued; %d pages read\n",
		r.HardFaults, r.SoftFaults, r.SoftFaultsDaemon, r.RescueFaults, r.PageIns)
	fmt.Fprintf(&b, "  daemon: %d activations, %d pages stolen; releaser: %d pages freed (%d rescued)\n",
		r.DaemonActivations, r.PagesStolen, r.PagesReleased, r.ReleasesRescued)
	if r.InteractiveMeanResponseMS > 0 {
		fmt.Fprintf(&b, "  interactive: %.2f ms mean response, %.1f pages read per sweep\n",
			r.InteractiveMeanResponseMS, r.InteractivePageInsPerSweep)
	}
	return b.String()
}

func report(name string, v Version, res *driver.Result) *Report {
	return &Report{
		Benchmark:            name,
		Version:              v.String(),
		ElapsedSeconds:       res.Elapsed.Seconds(),
		UserSeconds:          res.Times[vm.BucketUser].Seconds(),
		SystemSeconds:        res.Times[vm.BucketSystem].Seconds(),
		StallResourceSeconds: res.StallResources().Seconds(),
		StallIOSeconds:       res.Times[vm.BucketStallIO].Seconds(),

		HardFaults:       res.VM.HardFaults,
		SoftFaults:       res.VM.SoftFaults,
		SoftFaultsDaemon: res.VM.SoftFaultsDaemon,
		RescueFaults:     res.VM.RescueFaults,
		PageIns:          res.VM.PageIns,

		DaemonActivations: res.Daemon.Activations,
		PagesStolen:       res.Daemon.Stolen,
		PagesReleased:     res.Releaser.Freed,
		ReleasesRescued:   res.Phys.RescuedRelease,

		PrefetchesIssued:   res.RT.PrefetchIssued,
		PrefetchesFiltered: res.RT.PrefetchFiltered,
		ReleaseCalls:       res.RT.ReleaseCalls,

		InteractiveMeanResponseMS:  res.Interactive.MeanResponse.Millis(),
		InteractivePageInsPerSweep: res.Interactive.MeanPageIns,
	}
}

// Run executes the compiled program on its machine.
func (p *Program) Run(opts RunOptions) (*Report, error) {
	cfg := driver.RunConfig{
		Kernel:           p.mach.kernelConfig(),
		Mode:             p.ver.mode(),
		RT:               rt.DefaultConfig(p.ver.mode()),
		Params:           opts.Params,
		Horizon:          30 * 60 * sim.Second,
		InteractiveSleep: -1,
	}
	if opts.InteractiveSleepMS >= 0 {
		cfg.InteractiveSleep = sim.Time(opts.InteractiveSleepMS) * sim.Millisecond
	}
	if opts.RepeatSeconds > 0 {
		cfg.Repeat = true
		cfg.Horizon = sim.Time(opts.RepeatSeconds) * sim.Second
	}
	res, err := driver.RunCompiled(p.name, p.comp, cfg)
	if err != nil {
		return nil, err
	}
	return report(p.name, p.ver, res), nil
}

// BenchmarkNames lists the built-in Table 2 benchmarks.
func BenchmarkNames() []string {
	var names []string
	for _, s := range workload.All() {
		names = append(names, s.Name)
	}
	return names
}

// BenchmarkSource returns the loop-language source of a built-in
// benchmark (full-size unless the machine is scaled).
func BenchmarkSource(name string, m Machine) (string, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return "", err
	}
	return spec.Source, nil
}

func specFor(name string, m Machine) (*workload.Spec, error) {
	if m.Scaled {
		return workload.ScaledByName(name)
	}
	return workload.ByName(name)
}

// RunBenchmark runs one built-in benchmark in one version on the given
// machine, with no interactive task.
func RunBenchmark(name string, v Version, m Machine) (*Report, error) {
	return RunBenchmarkOpts(name, v, m, RunOptions{InteractiveSleepMS: -1})
}

// RunBenchmarkOpts is RunBenchmark with interactive/repeat options.
func RunBenchmarkOpts(name string, v Version, m Machine, opts RunOptions) (*Report, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return nil, err
	}
	cfg := driver.RunConfig{
		Kernel:           m.kernelConfig(),
		Mode:             v.mode(),
		RT:               rt.DefaultConfig(v.mode()),
		Params:           opts.Params,
		Horizon:          30 * 60 * sim.Second,
		InteractiveSleep: -1,
	}
	if opts.InteractiveSleepMS >= 0 {
		cfg.InteractiveSleep = sim.Time(opts.InteractiveSleepMS) * sim.Millisecond
	}
	if opts.RepeatSeconds > 0 {
		cfg.Repeat = true
		cfg.Horizon = sim.Time(opts.RepeatSeconds) * sim.Second
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		return nil, err
	}
	return report(name, v, res), nil
}

// Campaign configures a batch of experiment runs. The zero value is
// the paper's full-scale serial campaign; set Quick for the scaled
// machine and Workers to run the campaign's independent simulations on
// a worker pool (0 means one worker per CPU, 1 forces serial). Every
// run is an isolated deterministic simulation, so the rendered tables
// and figures are byte-identical at any worker count; only the order
// of Progress lines varies.
type Campaign struct {
	Quick    bool
	Workers  int
	Progress io.Writer
}

func (c Campaign) opts() experiments.Opts {
	o := experiments.Default()
	if c.Quick {
		o = experiments.Quick()
	}
	o.Workers = c.Workers
	o.Progress = c.Progress
	return o
}

// Experiment regenerates one of the paper's tables or figures and
// returns the rendered text. Valid ids: table1, table2, table3, fig1,
// fig7, fig8, fig9, fig10a, fig10b, fig10c, locks.
func (c Campaign) Experiment(id string) (string, error) {
	o := c.opts()
	switch id {
	case "table1":
		return experiments.Table1(o).String(), nil
	case "table2":
		t, err := experiments.Table2(o)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	case "fig7", "fig8", "fig9", "table3", "locks":
		v, err := experiments.RunVersions(o)
		if err != nil {
			return "", err
		}
		switch id {
		case "fig7":
			return experiments.Fig7(v), nil
		case "fig8":
			return experiments.Fig8(v).String(), nil
		case "fig9":
			return experiments.Fig9(v).String(), nil
		case "locks":
			return experiments.LockTable(v).String(), nil
		default:
			return experiments.Table3(v).String(), nil
		}
	case "fig1", "fig10a":
		s, err := experiments.RunSweep(o)
		if err != nil {
			return "", err
		}
		if id == "fig1" {
			return experiments.Fig1(s).String(), nil
		}
		return experiments.Fig10a(s).String(), nil
	case "fig10b", "fig10c":
		d, err := experiments.RunInteractive(o)
		if err != nil {
			return "", err
		}
		if id == "fig10b" {
			return experiments.Fig10b(d).String(), nil
		}
		return experiments.Fig10c(d).String(), nil
	default:
		return "", fmt.Errorf("memhogs: unknown experiment %q", id)
	}
}

// Experiment regenerates one table or figure with a serial campaign.
// quick selects the scaled campaign; progress (may be nil) receives
// per-run status lines. See Campaign for parallel execution.
func Experiment(id string, quick bool, progress io.Writer) (string, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.Experiment(id)
}

// ExperimentIDs lists the reproducible tables and figures in paper
// order.
func ExperimentIDs() []string {
	return []string{"table1", "table2", "fig1", "fig7", "fig8", "table3", "fig9", "fig10a", "fig10b", "fig10c"}
}

// Duel runs two out-of-core benchmarks concurrently in each program
// version — the multiprogrammed scenario the paper's introduction
// motivates. The table shows both hogs' elapsed times and how many
// pages the daemon stole from each.
func Duel(benchA, benchB string, m Machine) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "duel: %s vs %s\n", benchA, benchB)
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %12s\n", "version",
		benchA+" time", benchB+" time", "stolen(A)", "stolen(B)")
	horizon := 30 * 60 * sim.Second
	for _, v := range Versions() {
		ra, rb, err := driver.RunPair(benchA, benchB, v.mode(), m.kernelConfig(), m.Scaled, horizon)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %14s %14s %12d %12d\n",
			v.String(), ra.Elapsed.String(), rb.Elapsed.String(), ra.Stolen, rb.Stolen)
	}
	b.WriteString("Expected shape: with releasing (R/B) the hogs stop stealing from each other.\n")
	return b.String(), nil
}

// Sensitivity sweeps the machine's memory size for one benchmark,
// comparing prefetch-only against buffered releasing from
// memory-starved to data-fits (a study the paper's fixed 75 MB
// platform leaves open).
func (c Campaign) Sensitivity(bench string) (string, error) {
	s, err := experiments.RunSensitivity(c.opts(), bench, nil)
	if err != nil {
		return "", err
	}
	return experiments.FormatSensitivity(s).String(), nil
}

// Sensitivity runs Campaign.Sensitivity serially. quick uses the
// scaled benchmark.
func Sensitivity(bench string, quick bool, progress io.Writer) (string, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.Sensitivity(bench)
}

// Tenants runs the multi-tenant datacenter-node campaign: a
// NUMA-sharded machine (per-node free lists, clock daemons and
// releasers, plus an inter-node free-frame balancer) where a hog
// population collides with an open-loop stream of short interactive
// jobs. The table reports the job response-time tail (p50/p99/p999)
// per benchmark and program version, with the node-local/remote
// allocation split and balancer traffic that produced it. benches
// filters the hog benchmark set (none = all six).
func (c Campaign) Tenants(benches ...string) (string, error) {
	o := c.opts()
	if len(benches) > 0 {
		o.Benches = benches
	}
	m, err := experiments.RunMultiTenant(o)
	if err != nil {
		return "", err
	}
	return experiments.TenantTable(m).String(), nil
}

// Tenants runs Campaign.Tenants serially. quick uses the scaled
// machine and benchmarks.
func Tenants(quick bool, progress io.Writer, benches ...string) (string, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.Tenants(benches...)
}

// Tiering runs the memory-tiering campaign: the machine's memory
// budget split between DRAM and a CXL-like far tier at several ratios
// (1:0 through 1:3), with the compiler's eq. 2 reuse priorities
// steering released pages to the far tier instead of swap. The table
// reports elapsed time, hard faults, and tier traffic per benchmark,
// version, and split — the figure the paper's 2000 hardware could not
// draw. benches filters the benchmark set (none = all six).
func (c Campaign) Tiering(benches ...string) (string, error) {
	o := c.opts()
	if len(benches) > 0 {
		o.Benches = benches
	}
	d, err := experiments.RunTiering(o)
	if err != nil {
		return "", err
	}
	if err := d.Check(); err != nil {
		return "", err
	}
	return experiments.TieringTable(d).String(), nil
}

// Tiering runs Campaign.Tiering serially. quick uses the scaled
// machine and benchmarks.
func Tiering(quick bool, progress io.Writer, benches ...string) (string, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.Tiering(benches...)
}

// Timeline runs one benchmark version with a concurrent interactive
// task and returns an ASCII timeline of the memory system's dynamics:
// free pages, per-process resident sets, and cumulative daemon and
// releaser activity.
func Timeline(name string, v Version, m Machine, seconds int, sleepMS int) (string, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return "", err
	}
	if seconds <= 0 {
		seconds = 20
	}
	horizon := sim.Time(seconds) * sim.Second
	var rec *trace.Recorder
	cfg := driver.RunConfig{
		Kernel:           m.kernelConfig(),
		Mode:             v.mode(),
		RT:               rt.DefaultConfig(v.mode()),
		Repeat:           true,
		Horizon:          horizon,
		InteractiveSleep: -1,
		OnSystem: func(sys *kernel.System) {
			rec = trace.Attach(sys, horizon/60)
		},
	}
	if sleepMS >= 0 {
		cfg.InteractiveSleep = sim.Time(sleepMS) * sim.Millisecond
	}
	if _, err := driver.Run(spec, cfg); err != nil {
		return "", err
	}
	return rec.Render(60) + rec.Summary() + "\n", nil
}

// TraceResult is the flight recorder's output for one run: the run's
// summary report, the human-readable merged event log, the Chrome
// trace-event JSON (load chrome://tracing or https://ui.perfetto.dev),
// and the exact per-kind counter registry (unaffected by ring drops).
type TraceResult struct {
	Report     *Report
	Log        string // merged event log + counter summary
	Summary    string // just the counter summary
	ChromeJSON []byte
	Events     int              // events retained in the bounded ring
	Dropped    int64            // events the ring discarded (oldest first)
	Counters   map[string]int64 // exact totals by event-kind name
}

// traceCapacity bounds the flight recorder's ring for Trace runs
// (~23 MB of events); older events are dropped and counted, the
// counter registry stays exact.
const traceCapacity = 1 << 18

// Trace runs one benchmark version with the event-level flight
// recorder attached to every layer (vm faults, daemon sweeps and
// steals, releaser outcomes, run-time hint filtering and buffering,
// shared-page updates) and returns the recorded stream. seconds <= 0
// runs the program once to completion; sleepMS >= 0 adds the
// concurrent interactive task. The output is fully deterministic: the
// same arguments always produce byte-identical ChromeJSON.
func Trace(name string, v Version, m Machine, seconds int, sleepMS int) (*TraceResult, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return nil, err
	}
	horizon := 30 * 60 * sim.Second
	if seconds > 0 {
		horizon = sim.Time(seconds) * sim.Second
	}
	var rec *events.Recorder
	cfg := driver.RunConfig{
		Kernel:           m.kernelConfig(),
		Mode:             v.mode(),
		RT:               rt.DefaultConfig(v.mode()),
		Horizon:          horizon,
		InteractiveSleep: -1,
		OnSystem: func(sys *kernel.System) {
			rec = events.New(sys.Sim, traceCapacity)
			sys.SetEvents(rec)
		},
	}
	if sleepMS >= 0 {
		cfg.InteractiveSleep = sim.Time(sleepMS) * sim.Millisecond
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		return nil, err
	}
	counts := rec.Counts()
	counters := make(map[string]int64)
	for k := events.Kind(0); k < events.KindCount; k++ {
		if counts[k] != 0 {
			counters[k.String()] = counts[k]
		}
	}
	return &TraceResult{
		Report:     report(name, v, res),
		Log:        rec.Log(),
		Summary:    rec.CounterSummary(),
		ChromeJSON: rec.Chrome(),
		Events:     rec.Len(),
		Dropped:    rec.Dropped(),
		Counters:   counters,
	}, nil
}

// ChaosOptions configures a fault-injection run.
type ChaosOptions struct {
	// Seed drives every probabilistic fault decision. Equal seeds (with
	// equal faults, benchmark, version and machine) replay the run
	// byte-for-byte, which is how a failure found by the property
	// harness is reproduced.
	Seed uint64
	// Faults selects what to inject: a named fault class (see
	// ChaosClasses) or a plan string such as
	// "releaser-stall:p=0.1,mag=5ms;disk-error:p=0.02". Empty means
	// "all" — every class combined.
	Faults string
	// AuditEveryMS is the continuous-audit cadence in virtual
	// milliseconds; 0 picks a default (5 ms on the scaled machine,
	// 100 ms at full scale). The whole machine is additionally audited
	// after every injected fault.
	AuditEveryMS int
	// InteractiveSleepMS, if >= 0, runs the paper's interactive task
	// concurrently with the given think time in milliseconds.
	InteractiveSleepMS int
	// Seconds, if > 0, loops the program until the given virtual time
	// instead of running it once.
	Seconds int
}

// ChaosReport is a Report plus the injection and auditing record.
type ChaosReport struct {
	*Report
	// Plan is the canonical plan string; feeding it back through
	// ChaosOptions.Faults replays this exact run.
	Plan          string
	Injected      map[string]int64 // injected faults by site name
	InjectedTotal int64
	AuditTicks    int // cadence audits performed, all clean
}

// String renders the run summary followed by the injection record.
func (r *ChaosReport) String() string {
	var b strings.Builder
	b.WriteString(r.Report.String())
	fmt.Fprintf(&b, "  chaos: %d faults injected, %d clean audits\n",
		r.InjectedTotal, r.AuditTicks)
	sites := make([]string, 0, len(r.Injected))
	for s := range r.Injected {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		fmt.Fprintf(&b, "    %-16s %d\n", s, r.Injected[s])
	}
	fmt.Fprintf(&b, "  plan: %s\n", r.Plan)
	return b.String()
}

// ChaosClasses lists the named fault classes, in their stable order.
func ChaosClasses() []string { return chaos.ClassNames() }

// chaosPlan resolves the Faults option: a class name, or a parseable
// plan string. An explicit Seed option overrides a seed= plan entry.
func chaosPlan(faults string, seed uint64) (chaos.Plan, error) {
	if faults == "" {
		faults = "all"
	}
	if p, err := chaos.ClassPlan(faults, seed); err == nil {
		return p, nil
	}
	p, err := chaos.ParsePlan(faults)
	if err != nil {
		return chaos.Plan{}, fmt.Errorf("%w (or name a fault class: %s)",
			err, strings.Join(chaos.ClassNames(), " "))
	}
	if seed != 0 || p.Seed == 0 {
		p.Seed = seed
	}
	return p, nil
}

// Chaos runs one built-in benchmark version under deterministic fault
// injection with continuous invariant auditing: the whole machine is
// audited on a virtual-time cadence and after every injected fault,
// and any corruption fails the run with the audit's diagnosis. A
// completed run therefore certifies that the injected faults only
// degraded throughput — they never corrupted memory-system state or
// wedged the machine.
func Chaos(name string, v Version, m Machine, opts ChaosOptions) (*ChaosReport, error) {
	spec, err := specFor(name, m)
	if err != nil {
		return nil, err
	}
	plan, err := chaosPlan(opts.Faults, opts.Seed)
	if err != nil {
		return nil, err
	}
	auditEvery := 100 * sim.Millisecond
	if m.Scaled {
		auditEvery = 5 * sim.Millisecond
	}
	if opts.AuditEveryMS > 0 {
		auditEvery = sim.Time(opts.AuditEveryMS) * sim.Millisecond
	}
	cfg := driver.RunConfig{
		Kernel:           m.kernelConfig(),
		Mode:             v.mode(),
		RT:               rt.DefaultConfig(v.mode()),
		Horizon:          30 * 60 * sim.Second,
		InteractiveSleep: -1,
		Chaos:            &plan,
		AuditEvery:       auditEvery,
		AuditOnFault:     true,
	}
	// A plan that arms far-tier sites needs a far tier to hit: split
	// the budget 3:1, exactly like the chaos matrix's far cells.
	// Other plans keep the all-DRAM machine.
	if plan.TargetsFar() && cfg.Kernel.Far.Pages == 0 {
		dram, far := (experiments.TierRatio{DRAM: 3, Far: 1}).Split(cfg.Kernel.UserMemPages)
		cfg.Kernel.UserMemPages = dram
		cfg.Kernel.Far.Pages = far
	}
	if opts.InteractiveSleepMS >= 0 {
		cfg.InteractiveSleep = sim.Time(opts.InteractiveSleepMS) * sim.Millisecond
	}
	if opts.Seconds > 0 {
		cfg.Repeat = true
		cfg.Horizon = sim.Time(opts.Seconds) * sim.Second
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		return nil, err
	}
	return &ChaosReport{
		Report:        report(name, v, res),
		Plan:          plan.String(),
		Injected:      res.Chaos.Map(),
		InjectedTotal: res.Chaos.Total(),
		AuditTicks:    res.AuditTicks,
	}, nil
}

// ChaosMatrix runs the chaos campaign — every benchmark × version ×
// fault class, each cell fully audited — and returns the rendered
// matrix. The error reports the first cell that wedged, skipped its
// audits, or lost the paper's Buffered-beats-Original ordering under
// faults; the rendered matrix is returned alongside it for diagnosis.
func (c Campaign) ChaosMatrix(seed uint64) (string, error) {
	m, err := experiments.RunChaosMatrix(c.opts(), seed)
	if err != nil {
		return "", err
	}
	out := experiments.FormatChaosMatrix(m).String()
	if err := m.Check(); err != nil {
		return out, err
	}
	return out, nil
}

// Verify runs the three experiment campaigns and checks the paper's
// headline claims against the reproduction, returning the rendered
// claim table and whether every claim held.
func (c Campaign) Verify() (string, bool, error) {
	o := c.opts()
	v, err := experiments.RunVersions(o)
	if err != nil {
		return "", false, err
	}
	d, err := experiments.RunInteractive(o)
	if err != nil {
		return "", false, err
	}
	s, err := experiments.RunSweep(o)
	if err != nil {
		return "", false, err
	}
	claims := experiments.CheckClaims(v, d, s)
	all := true
	for _, c := range claims {
		all = all && c.Pass
	}
	return experiments.FormatClaims(claims), all, nil
}

// Verify runs Campaign.Verify serially.
func Verify(quick bool, progress io.Writer) (string, bool, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.Verify()
}

// All regenerates every table and figure in paper order, sharing the
// underlying runs between the figures the paper derives from the same
// data (Figure 7/8/9 and Table 3 share one campaign; Figures 1 and
// 10(a) share the sleep sweep; Figures 10(b) and 10(c) share the
// interactive campaign).
func (c Campaign) All() (string, error) {
	o := c.opts()

	var b strings.Builder
	emit := func(s string) { b.WriteString(s); b.WriteString("\n") }

	emit(experiments.Table1(o).String())
	t2, err := experiments.Table2(o)
	if err != nil {
		return "", err
	}
	emit(t2.String())

	sweep, err := experiments.RunSweep(o)
	if err != nil {
		return "", err
	}
	emit(experiments.Fig1(sweep).String())

	versions, err := experiments.RunVersions(o)
	if err != nil {
		return "", err
	}
	emit(experiments.Fig7(versions))
	emit(experiments.Fig8(versions).String())
	emit(experiments.Table3(versions).String())
	emit(experiments.Fig9(versions).String())

	emit(experiments.Fig10a(sweep).String())

	inter, err := experiments.RunInteractive(o)
	if err != nil {
		return "", err
	}
	emit(experiments.Fig10b(inter).String())
	emit(experiments.Fig10c(inter).String())
	return b.String(), nil
}

// AllExperiments runs Campaign.All serially. quick selects the scaled
// campaign.
func AllExperiments(quick bool, progress io.Writer) (string, error) {
	return Campaign{Quick: quick, Workers: 1, Progress: progress}.All()
}
