package memhogs

import (
	"strings"
	"testing"
)

func TestRunBenchmarkQuick(t *testing.T) {
	rep, err := RunBenchmark("matvec", Buffered, TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed = %v", rep.ElapsedSeconds)
	}
	if rep.PagesReleased == 0 {
		t.Fatal("buffered version released nothing")
	}
	out := rep.String()
	for _, want := range []string{"matvec", "stall-io", "releaser"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAllVersionsOrdering(t *testing.T) {
	m := TestMachine()
	var elapsed []float64
	for _, v := range Versions() {
		rep, err := RunBenchmark("embar", v, m)
		if err != nil {
			t.Fatal(err)
		}
		elapsed = append(elapsed, rep.ElapsedSeconds)
	}
	// O slowest; releasing at least as good as prefetch-only.
	if elapsed[0] <= elapsed[1] {
		t.Errorf("O (%v) not slower than P (%v)", elapsed[0], elapsed[1])
	}
	if elapsed[2] > elapsed[1]*1.05 {
		t.Errorf("R (%v) slower than P (%v)", elapsed[2], elapsed[1])
	}
}

func TestCompileCustomProgram(t *testing.T) {
	src := `
program mini
param N
known N = 65536
array a[N] of float64
array b[N] of float64
for i = 0 to N-1 {
    b[i] = a[i] * 2 + 1 @ 50
}
`
	prog, err := Compile(src, TestMachine(), Buffered)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.PrefetchDirectives == 0 || st.ReleaseDirectives == 0 {
		t.Fatalf("no directives inserted: %+v", st)
	}
	lst := prog.Listing()
	if !strings.Contains(lst, "pf(&a[") || !strings.Contains(lst, "rel(&") {
		t.Fatalf("listing missing hints:\n%s", lst)
	}
	rep, err := prog.Run(RunOptions{InteractiveSleepMS: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PageIns == 0 {
		t.Fatal("program read no pages")
	}
}

func TestCompileRejectsBadSource(t *testing.T) {
	if _, err := Compile("program broken\n???", TestMachine(), Original); err == nil {
		t.Fatal("bad source compiled")
	}
}

func TestCustomProgramWithInteractive(t *testing.T) {
	src, err := BenchmarkSource("matvec", TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(src, TestMachine(), PrefetchOnly)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.Run(RunOptions{InteractiveSleepMS: 1000, RepeatSeconds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InteractiveMeanResponseMS <= 0 {
		t.Fatal("no interactive response measured")
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 {
		t.Fatalf("benchmarks = %v", names)
	}
	if _, err := RunBenchmark("nosuch", Original, TestMachine()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestExperimentIDsAllRenderQuick(t *testing.T) {
	// Only the cheap static ones here; the full campaign runs in the
	// Go benchmarks and the CLI.
	for _, id := range []string{"table1", "table2"} {
		out, err := Experiment(id, true, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s: empty", id)
		}
	}
	if _, err := Experiment("nosuch", true, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestVersionStrings(t *testing.T) {
	want := map[Version]string{Original: "O", PrefetchOnly: "P", Aggressive: "R", Buffered: "B"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestMachineConfig(t *testing.T) {
	m := DefaultMachine()
	cfg := m.kernelConfig()
	if cfg.UserMemPages != 4800 {
		t.Errorf("pages = %d, want 4800", cfg.UserMemPages)
	}
	m.MemoryMB = 150
	if m.kernelConfig().UserMemPages != 9600 {
		t.Error("MemoryMB override ignored")
	}
}
