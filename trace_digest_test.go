package memhogs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"sort"
	"testing"
)

// TestTraceDigests pins the flight-recorder trace bytes for every
// benchmark × version on the quick machine: the sha256 of each
// `memhog -quick -quiet trace <bench> <version>` output must match
// testdata/trace_digests.json, captured before the event-queue and
// bitmap rebuilds. Any divergence means a perf refactor changed
// simulated behavior, not just speed. After an intentional behavior
// change, regenerate the file by hashing fresh Trace output for all
// 24 cells.
func TestTraceDigests(t *testing.T) {
	data, err := os.ReadFile("testdata/trace_digests.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	versions := map[string]Version{
		"O": Original, "P": PrefetchOnly, "R": Aggressive, "B": Buffered,
	}
	cells := make([]string, 0, len(want))
	for cell := range want {
		cells = append(cells, cell)
	}
	sort.Strings(cells)
	if len(cells) != 24 {
		t.Fatalf("digest file has %d cells, want 24 (6 benchmarks x 4 versions)", len(cells))
	}
	m := TestMachine()
	for _, cell := range cells {
		var bench, ver string
		for i := range cell {
			if cell[i] == '/' {
				bench, ver = cell[:i], cell[i+1:]
			}
		}
		v, ok := versions[ver]
		if !ok {
			t.Fatalf("bad cell key %q", cell)
		}
		tr, err := Trace(bench, v, m, 0, -1)
		if err != nil {
			t.Fatalf("%s: %v", cell, err)
		}
		sum := sha256.Sum256(tr.ChromeJSON)
		if got := hex.EncodeToString(sum[:]); got != want[cell] {
			t.Errorf("%s: trace bytes changed (sha256 %s, want %s)", cell, got, want[cell])
		}
	}
}
