package memhogs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"
)

// traceDigestCells enumerates the pinned trace matrix: every benchmark
// x version on the quick machine, plus the far-tier cells — FFTPDE
// (the benchmark whose releases carry reuse priorities, so its pages
// actually demote and promote) on the same 256-page budget split 3:1
// DRAM:far. 6x4 + 4 = 28 cells.
func traceDigestCells() []struct {
	Key   string
	Bench string
	V     Version
	M     Machine
} {
	versions := []struct {
		Letter string
		V      Version
	}{
		{"O", Original}, {"P", PrefetchOnly}, {"R", Aggressive}, {"B", Buffered},
	}
	plain := TestMachine()
	farMachine := TestMachine()
	farMachine.MemoryMB = 3 // 192 DRAM pages ...
	farMachine.FarMemMB = 1 // ... + 64 far slots = the same 256-page budget
	var cells []struct {
		Key   string
		Bench string
		V     Version
		M     Machine
	}
	for _, bench := range BenchmarkNames() {
		for _, ver := range versions {
			cells = append(cells, struct {
				Key   string
				Bench string
				V     Version
				M     Machine
			}{bench + "/" + ver.Letter, bench, ver.V, plain})
		}
	}
	for _, ver := range versions {
		cells = append(cells, struct {
			Key   string
			Bench string
			V     Version
			M     Machine
		}{"fftpde/" + ver.Letter + "+far", "fftpde", ver.V, farMachine})
	}
	return cells
}

// TestTraceDigests pins the flight-recorder trace bytes for every cell
// of traceDigestCells: the sha256 of each `memhog -quick -quiet trace`
// output must match testdata/trace_digests.json. Any divergence means
// a refactor changed simulated behavior, not just speed — including
// the far-tier cells, whose demote/promote traffic is part of the
// pinned byte stream. After an intentional behavior change, regenerate
// with UPDATE_TRACE_DIGESTS=1 go test -run TestTraceDigests .
func TestTraceDigests(t *testing.T) {
	cells := traceDigestCells()
	if len(cells) != 28 {
		t.Fatalf("digest matrix has %d cells, want 28 (6 benchmarks x 4 versions + 4 far cells)", len(cells))
	}
	got := map[string]string{}
	for _, cell := range cells {
		tr, err := Trace(cell.Bench, cell.V, cell.M, 0, -1)
		if err != nil {
			t.Fatalf("%s: %v", cell.Key, err)
		}
		sum := sha256.Sum256(tr.ChromeJSON)
		got[cell.Key] = hex.EncodeToString(sum[:])
	}
	if os.Getenv("UPDATE_TRACE_DIGESTS") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/trace_digests.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests", len(got))
		return
	}
	data, err := os.ReadFile("testdata/trace_digests.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cells) {
		t.Fatalf("digest file has %d cells, matrix has %d — regenerate with UPDATE_TRACE_DIGESTS=1",
			len(want), len(cells))
	}
	for _, cell := range cells {
		if got[cell.Key] != want[cell.Key] {
			t.Errorf("%s: trace bytes changed (sha256 %s, want %s)", cell.Key, got[cell.Key], want[cell.Key])
		}
	}
}
